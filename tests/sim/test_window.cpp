#include <gtest/gtest.h>

#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"

namespace aa::sim {
namespace {

using protocols::ProtocolKind;

Execution make_exec(int n, int t, std::uint64_t seed,
                    double ones_fraction = 0.5) {
  return Execution(
      protocols::make_processes(ProtocolKind::Reset, t,
                                protocols::split_inputs(n, ones_fraction)),
      seed);
}

TEST(WindowPlanValidation, AcceptsLegalPlan) {
  WindowPlan plan;
  plan.delivery_order.assign(4, {0, 1, 2, 3});
  plan.resets = {0};
  EXPECT_NO_THROW(validate_window_plan(plan, 4, 1));
}

TEST(WindowPlanValidation, RejectsSmallSi) {
  WindowPlan plan;
  plan.delivery_order.assign(4, {0, 1});  // |S_i| = 2 < n - t = 3
  EXPECT_THROW(validate_window_plan(plan, 4, 1), std::invalid_argument);
}

TEST(WindowPlanValidation, RejectsTooManyResets) {
  WindowPlan plan;
  plan.delivery_order.assign(4, {0, 1, 2, 3});
  plan.resets = {0, 1};  // t = 1
  EXPECT_THROW(validate_window_plan(plan, 4, 1), std::invalid_argument);
}

TEST(WindowPlanValidation, RejectsDuplicateSenders) {
  WindowPlan plan;
  plan.delivery_order.assign(4, {0, 0, 1, 2});
  EXPECT_THROW(validate_window_plan(plan, 4, 1), std::invalid_argument);
}

TEST(WindowPlanValidation, RejectsDuplicateResets) {
  WindowPlan plan;
  plan.delivery_order.assign(4, {0, 1, 2, 3});
  plan.resets = {2, 2};
  EXPECT_THROW(validate_window_plan(plan, 4, 2), std::invalid_argument);
}

TEST(WindowPlanValidation, RejectsOutOfRangeIds) {
  WindowPlan plan;
  plan.delivery_order.assign(4, {0, 1, 2, 7});
  EXPECT_THROW(validate_window_plan(plan, 4, 1), std::invalid_argument);
  plan.delivery_order.assign(4, {0, 1, 2, 3});
  plan.resets = {-1};
  EXPECT_THROW(validate_window_plan(plan, 4, 1), std::invalid_argument);
}

TEST(WindowPlanValidation, RejectsWrongReceiverCount) {
  WindowPlan plan;
  plan.delivery_order.assign(3, {0, 1, 2, 3});
  EXPECT_THROW(validate_window_plan(plan, 4, 1), std::invalid_argument);
}

TEST(RunAcceptableWindow, DeliversAndAdvancesWindow) {
  const int n = 8;
  const int t = 1;
  Execution e = make_exec(n, t, 1);
  adversary::FairWindowAdversary fair;
  const int deliveries = run_acceptable_window(e, fair, t);
  EXPECT_EQ(deliveries, n * n);  // everyone's broadcast fully delivered
  EXPECT_EQ(e.window(), 1);
  EXPECT_EQ(e.buffer().pending_count(), 0u);
}

TEST(RunAcceptableWindow, UndeliveredMessagesDropped) {
  const int n = 8;
  const int t = 1;
  Execution e = make_exec(n, t, 1);
  adversary::SilencerWindowAdversary silencer({0});
  run_acceptable_window(e, silencer, t);
  // The silenced processor's n messages were dropped at the window edge.
  EXPECT_EQ(e.buffer().dropped_count(), static_cast<std::size_t>(n));
}

TEST(RunAcceptableWindow, AdversaryPlanIsValidated) {
  class BadAdversary final : public WindowAdversary {
   public:
    PlanDecision plan_window_into(const Execution& exec,
                                  const WindowBatch&,
                                  WindowPlan& plan) override {
      // |S_i| = 0 < n − t: illegal.
      plan.delivery_order.assign(static_cast<std::size_t>(exec.n()), {});
      plan.resets.clear();
      return PlanDecision::kUpdated;
    }
    [[nodiscard]] std::string name() const override { return "bad"; }
  };
  const int t = 1;
  Execution e = make_exec(8, t, 1);
  BadAdversary bad;
  EXPECT_THROW(run_acceptable_window(e, bad, t), std::invalid_argument);
}

TEST(RunUntilFirstDecision, UnanimousDecidesInOneWindow) {
  // Theorem 4 fast path: all inputs equal → decision in window 1.
  const int n = 12;
  const int t = 1;
  Execution e(protocols::make_processes(ProtocolKind::Reset, t,
                                        protocols::unanimous_inputs(n, 0)),
              3);
  adversary::FairWindowAdversary fair;
  const auto windows = run_until_first_decision(e, fair, t, 100);
  EXPECT_EQ(windows, 1);
  EXPECT_GT(e.decided_count(), 0);
  EXPECT_EQ(e.first_decision()->value, 0);
}

TEST(RunUntilAllDecided, EventuallyAllDecide) {
  const int n = 12;
  const int t = 1;
  Execution e = make_exec(n, t, 5);
  adversary::FairWindowAdversary fair;
  const auto windows = run_until_all_decided(e, fair, t, 100000);
  EXPECT_TRUE(e.all_live_decided());
  EXPECT_TRUE(e.outputs_agree());
  EXPECT_GT(windows, 0);
}

TEST(RunUntilFirstDecision, RespectsWindowCap) {
  const int n = 12;
  const int t = 1;
  Execution e = make_exec(n, t, 5);
  adversary::SplitKeeperAdversary keeper;
  const auto windows = run_until_first_decision(e, keeper, t, 3);
  EXPECT_LE(windows, 3);
}

TEST(RunAcceptableWindow, ResetPlanExecutesResets) {
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 7);
  adversary::ResetStormAdversary storm(t, Rng(1));
  run_acceptable_window(e, storm, t);
  EXPECT_EQ(e.total_resets(), t);
}

}  // namespace
}  // namespace aa::sim
