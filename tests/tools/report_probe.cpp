// report_probe: deterministic dump of checker / exhaustive / harness
// reports, used to verify that engine refactors keep every report
// bit-identical across commits and thread counts.
//
//   ./build/tests/tools/report_probe [threads...]
//
// Prints one line per (component, config, thread-count) with every report
// field at full precision. Diff the output of two builds to prove
// equivalence; the driver runs it at threads 1/2/8.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

using namespace aa;

namespace {

void print_measure_one(const char* tag, int threads,
                       const core::MeasureOneReport& r) {
  std::printf("%s threads=%d trials=%d agree_viol=%d valid_viol=%d "
              "decided=%d all_decided=%d mean_windows=%.17g mean_chain=%.17g "
              "seeds=[",
              tag, threads, r.trials, r.agreement_violations,
              r.validity_violations, r.decided_runs, r.all_decided_runs,
              r.mean_windows_to_first, r.mean_chain_at_decision);
  for (std::size_t i = 0; i < r.violating_seeds.size(); ++i) {
    std::printf("%s%" PRIu64, i ? "," : "", r.violating_seeds[i]);
  }
  std::printf("]\n");
}

core::WindowAdversaryFactory window_factory(const std::string& name, int t) {
  return [name, t](std::uint64_t seed) -> std::unique_ptr<sim::WindowAdversary> {
    if (name == "fair") return std::make_unique<adversary::FairWindowAdversary>();
    if (name == "silencer") {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    if (name == "split-keeper")
      return std::make_unique<adversary::SplitKeeperAdversary>();
    if (name == "reset-storm")
      return std::make_unique<adversary::ResetStormAdversary>(t, Rng(seed * 7 + 1));
    return std::make_unique<adversary::RandomWindowAdversary>(t, 0.1,
                                                              Rng(seed * 9 + 2));
  };
}

core::AsyncAdversaryFactory async_factory(const std::string& name, int t) {
  return [name, t](std::uint64_t seed) -> std::unique_ptr<sim::AsyncAdversary> {
    if (name == "random-async")
      return std::make_unique<adversary::RandomAsyncScheduler>(Rng(seed * 3 + 1));
    if (name == "fixed-crash") {
      std::vector<sim::ProcId> crash;
      for (int i = 0; i < t; ++i) crash.push_back(i);
      return std::make_unique<adversary::FixedCrashScheduler>(crash,
                                                              Rng(seed * 5 + 3));
    }
    return std::make_unique<adversary::AsyncSplitKeeper>();
  };
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; ++i) thread_counts.push_back(std::atoi(argv[i]));
  if (thread_counts.empty()) thread_counts = {1, 2, 8};

  const struct {
    protocols::ProtocolKind kind;
    const char* kname;
  } kinds[] = {{protocols::ProtocolKind::Reset, "reset"},
               {protocols::ProtocolKind::Forgetful, "forgetful"},
               {protocols::ProtocolKind::BenOr, "benor"},
               {protocols::ProtocolKind::Bracha, "bracha"}};

  for (const int threads : thread_counts) {
    aa::ParallelConfig par;
    par.threads = threads;

    // ---- window-model checker, every adversary ----
    for (const auto& k : kinds) {
      for (const char* adv :
           {"fair", "silencer", "split-keeper", "reset-storm", "random"}) {
        const int n = 16;
        const int t = 2;
        const auto rep = core::check_measure_one_window(
            k.kind, protocols::split_inputs(n, 0.5), t,
            window_factory(adv, t), /*trials=*/40, /*max_windows=*/600,
            /*seed0=*/1000, std::nullopt, par);
        std::printf("window %s %s ", k.kname, adv);
        print_measure_one("", threads, rep);
      }
    }

    // ---- async checker, every scheduler ----
    for (const auto& k : kinds) {
      for (const char* adv : {"random-async", "fixed-crash", "async-split"}) {
        const int n = 10;
        const int t = 2;
        const auto rep = core::check_measure_one_async(
            k.kind, protocols::split_inputs(n, 0.5), t, async_factory(adv, t),
            /*trials=*/30, /*max_deliveries=*/40000, /*seed0=*/500,
            std::nullopt, par);
        std::printf("async %s %s ", k.kname, adv);
        print_measure_one("", threads, rep);
      }
    }

    // ---- exhaustive checker ----
    {
      core::ExhaustiveOptions opt;
      opt.max_depth = 3;
      opt.parallel = par;
      const auto th = protocols::canonical_thresholds(8, 1);
      const auto rep =
          core::exhaustive_check(1, th, protocols::split_inputs(8, 0.5), opt);
      std::printf("exhaustive threads=%d configs=%" PRId64 " transitions=%" PRId64
                  " depth=%d budget=%d agree=%d valid=%d\n",
                  threads, rep.configs_explored, rep.transitions,
                  rep.depth_completed, rep.budget_exhausted ? 1 : 0,
                  rep.agreement_ok ? 1 : 0, rep.validity_ok ? 1 : 0);
    }
  }

  // ---- harness experiments (thread-independent single runs) ----
  for (const auto& k : kinds) {
    for (const char* adv :
         {"fair", "silencer", "split-keeper", "reset-storm", "random"}) {
      const int n = 16;
      const int t = 2;
      auto a = window_factory(adv, t)(7);
      const auto r = core::run_window_experiment(
          k.kind, protocols::split_inputs(n, 0.5), t, *a,
          /*max_windows=*/500, /*seed=*/77);
      std::printf("harness-window %s %s decided=%d all=%d val=%d wtf=%" PRId64
                  " wins=%" PRId64 " steps=%" PRId64 " resets=%" PRId64
                  " agree=%d valid=%d\n",
                  k.kname, adv, r.decided ? 1 : 0, r.all_decided ? 1 : 0,
                  r.decision, r.windows_to_first, r.windows_total, r.steps,
                  r.total_resets, r.agreement ? 1 : 0, r.validity ? 1 : 0);
    }
    for (const char* adv : {"random-async", "fixed-crash", "async-split"}) {
      const int n = 10;
      const int t = 2;
      auto a = async_factory(adv, t)(11);
      const auto r = core::run_async_experiment(
          k.kind, protocols::split_inputs(n, 0.5), t, *a,
          /*max_deliveries=*/60000, /*seed=*/33);
      std::printf("harness-async %s %s decided=%d all=%d val=%d deliv=%" PRId64
                  " chain=%" PRId64 " crashes=%" PRId64
                  " limit=%d agree=%d valid=%d\n",
                  k.kname, adv, r.decided ? 1 : 0, r.all_decided ? 1 : 0,
                  r.decision, r.deliveries, r.chain_at_decision, r.crashes,
                  r.hit_limit ? 1 : 0, r.agreement ? 1 : 0,
                  r.validity ? 1 : 0);
    }
  }

  // ---- Byzantine harness ----
  for (const char* adv : {"fair", "silencer", "split-keeper"}) {
    const int n = 16;
    const int t = 2;
    auto a = window_factory(adv, t)(3);
    const auto r = core::run_byzantine_window_experiment(
        protocols::ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
        /*byz_count=*/2, protocols::ByzantineStrategy::Equivocate, *a,
        /*max_windows=*/500, /*seed=*/13, /*pre_crashed=*/{5});
    std::printf("harness-byz %s hd=%d had=%d ha=%d hv=%d wins=%" PRId64 "\n",
                adv, r.honest_decided, r.honest_all_decided ? 1 : 0,
                r.honest_agreement ? 1 : 0, r.honest_validity ? 1 : 0,
                r.windows_total);
  }

  // ---- campaign engine: merged summary per thread count ----
  // The accumulator-backed summary is exactly associative, so every line
  // in this block must be identical whatever the thread count.
  {
    core::CampaignConfig cfg;
    cfg.name = "probe";
    cfg.n = {8, 12};
    cfg.t = {1};
    cfg.protocols = {"reset", "forgetful"};
    cfg.memory_k = {0, 3};
    cfg.adversaries = {"fair", "random"};
    cfg.trials = 10;
    cfg.budget = 400;
    cfg.seed = 2000;
    cfg.chunk_size = 4;
    for (const int threads : thread_counts) {
      cfg.threads = threads;
      const auto result = core::run_campaign(cfg);
      std::printf("campaign summary cells=%d ",
                  static_cast<int>(result.cells.size()));
      print_measure_one("", threads, result.summary);
      for (const auto& cell : result.cells) {
        std::printf("campaign cell %d %s n=%d k=%d %s seed0=%" PRIu64 " ",
                    cell.index, cell.protocol.c_str(), cell.n, cell.memory_k,
                    cell.adversary.c_str(), cell.seed0);
        print_measure_one("", threads, cell.report);
      }
    }
  }
  return 0;
}
