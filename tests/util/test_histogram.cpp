#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace aa {
namespace {

TEST(Histogram, BucketsValues) {
  Histogram h(10.0);
  h.add(0.0);
  h.add(5.0);
  h.add(10.0);
  h.add(25.0);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, OriginShiftsBuckets) {
  Histogram h(5.0, 100.0);
  h.add(101.0);
  h.add(107.0);
  ASSERT_EQ(h.buckets().size(), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 105.0);
}

TEST(Histogram, ValuesBelowOriginClampToFirstBucket) {
  Histogram h(1.0, 0.0);
  h.add(-5.0);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(Histogram, RenderContainsCountsAndBars) {
  Histogram h(1.0);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Histogram, RenderEmptyIsEmpty) {
  Histogram h(1.0);
  EXPECT_TRUE(h.render().empty());
}

TEST(Histogram, NonPositiveWidthThrows) {
  EXPECT_THROW(Histogram(0.0), std::invalid_argument);
  EXPECT_THROW(Histogram(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace aa
