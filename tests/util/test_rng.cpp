#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace aa {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicSequence) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoolRoughlyFair) {
  Rng r(99);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bool()) ++heads;
  }
  // 5-sigma band around the mean.
  const double sigma = std::sqrt(trials * 0.25);
  EXPECT_NEAR(heads, trials / 2.0, 5 * sigma);
}

TEST(Rng, UniformIntRespectsRange) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // every value of the range appears
}

TEST(Rng, UniformIntSingleton) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntEmptyRangeThrows) {
  Rng r(5);
  EXPECT_THROW((void)r.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIndexBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform_index(13), 13u);
  EXPECT_THROW((void)r.uniform_index(0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  const double sigma = std::sqrt(trials * 0.3 * 0.7);
  EXPECT_NEAR(hits, trials * 0.3, 5 * sigma);
}

TEST(Rng, ForkDeterministic) {
  Rng parent1(42);
  Rng parent2(42);
  Rng c1 = parent1.fork(3);
  Rng c2 = parent2.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(42);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// Chi-square smoke test on byte uniformity of the generator output.
TEST(Rng, ByteChiSquare) {
  Rng r(1234);
  std::vector<int> counts(256, 0);
  const int draws = 65536;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(r.next_u64() & 0xFF)];
  }
  const double expected = draws / 256.0;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, sd ~22.6; accept within a generous band.
  EXPECT_GT(chi2, 150.0);
  EXPECT_LT(chi2, 400.0);
}

}  // namespace
}  // namespace aa
