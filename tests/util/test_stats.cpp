#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace aa {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample (unbiased) variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats big;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) big.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(Percentile, MedianOfOdd) { EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0); }

TEST(Percentile, MedianOfEvenInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> xs{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.25), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

TEST(Percentile, BadQThrows) {
  EXPECT_THROW((void)percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(LeastSquares, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 + 2.0 * xi);
  const LinearFit f = least_squares(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LeastSquares, NoisyLineReasonableFit) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(1.0 + 0.5 * i + ((i % 3) - 1) * 0.1);
  }
  const LinearFit f = least_squares(x, y);
  EXPECT_NEAR(f.slope, 0.5, 0.01);
  EXPECT_GT(f.r2, 0.99);
}

TEST(LeastSquares, MismatchThrows) {
  EXPECT_THROW((void)least_squares({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(LeastSquares, TooFewPointsThrows) {
  EXPECT_THROW((void)least_squares({1.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace aa
