#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace aa {
namespace {

TEST(Table, RenderAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  // Header, separator, two rows.
  int lines = 0;
  for (char ch : out) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowAccess) {
  Table t({"a"});
  t.add_row({"v"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.row(0)[0], "v");
  EXPECT_THROW((void)t.row(1), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.add_row({"plain"});
  EXPECT_EQ(t.to_csv(), "a\nplain\n");
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
  const std::string sci = Table::fmt_sci(12345.0, 2);
  EXPECT_NE(sci.find("e+04"), std::string::npos);
}

TEST(Table, PrintIncludesTitle) {
  Table t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os, "My Table");
  EXPECT_NE(os.str().find("== My Table =="), std::string::npos);
}

}  // namespace
}  // namespace aa
