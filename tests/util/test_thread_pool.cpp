#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace aa {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.submit([&hits] { ++hits; });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 1);
  pool.submit([&hits] { ++hits; });
  pool.submit([&hits] { ++hits; });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 3);
}

TEST(ThreadPool, PropagatesJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ParallelConfig, ResolvesThreadCounts) {
  EXPECT_EQ(ParallelConfig{}.resolved_threads(), 1);
  EXPECT_EQ((ParallelConfig{.threads = 3}).resolved_threads(), 3);
  EXPECT_GE((ParallelConfig{.threads = 0}).resolved_threads(), 1);
  EXPECT_EQ((ParallelConfig{.threads = -5}).resolved_threads(), 1);
}

TEST(ParallelForChunks, ChunkingDependsOnlyOnTotalAndChunkSize) {
  // 100 items in chunks of 32 → 4 chunks, whatever the thread count says.
  for (const int threads : {1, 2, 8}) {
    const ParallelConfig cfg{.threads = threads, .chunk_size = 32};
    EXPECT_EQ(chunk_count(100, cfg), 4);
    EXPECT_EQ(chunk_count(0, cfg), 0);
    EXPECT_EQ(chunk_count(1, cfg), 1);
    EXPECT_EQ(chunk_count(32, cfg), 1);
    EXPECT_EQ(chunk_count(33, cfg), 2);
  }
}

TEST(ParallelForChunks, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    const ParallelConfig cfg{.threads = threads, .chunk_size = 7};
    const std::int64_t total = 95;
    std::vector<std::atomic<int>> visits(static_cast<std::size_t>(total));
    parallel_for_chunks(total, cfg,
                        [&](int, std::int64_t begin, std::int64_t end) {
                          for (std::int64_t i = begin; i < end; ++i) {
                            ++visits[static_cast<std::size_t>(i)];
                          }
                        });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelForChunks, ChunkIndexMatchesRange) {
  const ParallelConfig cfg{.threads = 4, .chunk_size = 10};
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(
      static_cast<std::size_t>(chunk_count(42, cfg)));
  parallel_for_chunks(42, cfg,
                      [&](int ci, std::int64_t begin, std::int64_t end) {
                        ranges[static_cast<std::size_t>(ci)] = {begin, end};
                      });
  ASSERT_EQ(ranges.size(), 5u);
  for (std::size_t ci = 0; ci < ranges.size(); ++ci) {
    EXPECT_EQ(ranges[ci].first, static_cast<std::int64_t>(ci) * 10);
    EXPECT_EQ(ranges[ci].second,
              std::min<std::int64_t>(42, (static_cast<std::int64_t>(ci) + 1) * 10));
  }
}

TEST(ParallelForChunks, PropagatesBodyException) {
  const ParallelConfig cfg{.threads = 4, .chunk_size = 1};
  EXPECT_THROW(
      parallel_for_chunks(16, cfg,
                          [](int ci, std::int64_t, std::int64_t) {
                            if (ci == 7) throw std::runtime_error("chunk 7");
                          }),
      std::runtime_error);
}

// ---- WorkStealingPool ------------------------------------------------------

TEST(WorkStealingPool, RunsEverySubmittedJob) {
  WorkStealingPool pool(4);
  WorkStealingPool::TaskGroup group(pool);
  std::atomic<int> hits{0};
  for (int i = 0; i < 200; ++i) {
    group.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(hits.load(), 200);
}

TEST(WorkStealingPool, GroupsTrackCompletionIndependently) {
  // Two groups sharing one pool: each wait() sees only its own jobs done.
  WorkStealingPool pool(3);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  WorkStealingPool::TaskGroup ga(pool);
  WorkStealingPool::TaskGroup gb(pool);
  for (int i = 0; i < 50; ++i) {
    ga.submit([&a] { a.fetch_add(1, std::memory_order_relaxed); });
    gb.submit([&b] { b.fetch_add(1, std::memory_order_relaxed); });
  }
  ga.wait();
  EXPECT_EQ(a.load(), 50);
  gb.wait();
  EXPECT_EQ(b.load(), 50);
}

TEST(WorkStealingPool, ReusableAcrossManyBatches) {
  // The campaign pattern: one long-lived pool, a fresh group per check.
  WorkStealingPool pool(4);
  for (int round = 0; round < 20; ++round) {
    WorkStealingPool::TaskGroup group(pool);
    std::atomic<int> hits{0};
    for (int i = 0; i < 16; ++i) {
      group.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(hits.load(), 16);
  }
}

TEST(WorkStealingPool, WorkerIndexIdentifiesPoolThreads) {
  WorkStealingPool pool(4);
  EXPECT_EQ(pool.worker_index(), -1);  // the submitting thread is off-pool
  // Every observed worker index is a valid scratch slot. The caller (which
  // helps execute in wait()) reports -1; pool workers report [0, size()).
  std::mutex mu;
  std::vector<int> seen;
  WorkStealingPool::TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.submit([&] {
      const int idx = pool.worker_index();
      std::lock_guard<std::mutex> lock(mu);
      seen.push_back(idx);
    });
  }
  group.wait();
  ASSERT_EQ(seen.size(), 64u);
  for (const int idx : seen) {
    EXPECT_GE(idx, -1);
    EXPECT_LT(idx, pool.size());
  }
}

TEST(WorkStealingPool, WaitRethrowsFirstError) {
  WorkStealingPool pool(2);
  WorkStealingPool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.submit([i] {
      if (i == 3) throw std::runtime_error("job 3");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ParallelForChunks, WorkStealingOverloadVisitsEveryIndexOnce) {
  WorkStealingPool pool(4);
  for (const ParallelConfig cfg :
       {ParallelConfig{.threads = 4, .chunk_size = 7},
        ParallelConfig{.threads = 4, .chunk_size = 1},
        ParallelConfig{.threads = 1, .chunk_size = 5}}) {
    const std::int64_t total = 95;
    std::vector<std::atomic<int>> visits(static_cast<std::size_t>(total));
    parallel_for_chunks(
        total, cfg,
        [&](int, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            ++visits[static_cast<std::size_t>(i)];
          }
        },
        pool);
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelForChunks, WorkStealingOverloadPropagatesException) {
  WorkStealingPool pool(4);
  const ParallelConfig cfg{.threads = 4, .chunk_size = 1};
  EXPECT_THROW(parallel_for_chunks(
                   16, cfg,
                   [](int ci, std::int64_t, std::int64_t) {
                     if (ci == 7) throw std::runtime_error("chunk 7");
                   },
                   pool),
               std::runtime_error);
}

}  // namespace
}  // namespace aa
