// campaign: config-file-driven campaign runner.
//
//   ./build/tools/campaign <config-file> [overrides]
//
//   --threads N          override the config's pool width (0 = hardware)
//   --trials N           override trials per cell
//   --seed S             override the base seed
//   --output-dir DIR     override (or enable) JSON output
//   --resume             skip cells whose output JSON exists and validates
//   --cell-timeout-ms N  per-cell wall-clock watchdog (retries once at 2N)
//   --audit              run the engine invariant auditor every window
//   --audit-every N      sampled auditor: every Nth window boundary
//   --lens               capture the latency & accountability lens per cell
//                        (writes <name>_cell_<i>_lens.json sidecars)
//   --censor-target K    wrap every cell adversary in the targeted censor
//                        aimed at processor K
//   --parallel-cells     distribute whole cells across the pool (byte-
//                        identical artifacts; excludes --cell-timeout-ms)
//   --print-summary      print the merged-summary JSON to stdout
//   --print-cells        print one line per finished cell
//
// The config file is flat `key = value` text (lists comma-separated, `#`
// comments); see src/core/campaign.hpp for every key and
// examples/campaign_smoke.cfg for a worked example. One CampaignContext —
// work-stealing pool plus per-worker Execution scratch — is shared across
// every cell, and the merged summary is byte-identical at any --threads
// value (the determinism contract core/report.hpp documents).
//
// Crash safety: with an output dir set, each finished cell's JSON is
// written atomically the moment it completes, so a SIGKILL mid-sweep loses
// at most the in-flight cell. Re-running with --resume restores the
// completed cells from their artifacts and produces a summary byte-
// identical to an uninterrupted run's.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/campaign.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config-file> [--threads N] [--trials N] "
               "[--seed S] [--output-dir DIR] [--resume] "
               "[--cell-timeout-ms N] [--audit] [--audit-every N] "
               "[--lens] [--censor-target K] [--parallel-cells] "
               "[--print-summary] [--print-cells]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aa;

  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }

  bool print_summary = false;
  bool print_cells = false;
  try {
    core::CampaignConfig cfg = core::load_campaign_config(argv[1]);

    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          usage(argv[0]);
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--threads") cfg.threads = std::atoi(next());
      else if (arg == "--trials") cfg.trials = std::atoi(next());
      else if (arg == "--seed")
        cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
      else if (arg == "--output-dir") cfg.output_dir = next();
      else if (arg == "--resume") cfg.resume = true;
      else if (arg == "--cell-timeout-ms") cfg.cell_timeout_ms = std::atoll(next());
      else if (arg == "--audit") cfg.audit = true;
      else if (arg == "--audit-every") cfg.audit_every = std::atoi(next());
      else if (arg == "--lens") cfg.lens = true;
      else if (arg == "--censor-target") cfg.censor_target = std::atoi(next());
      else if (arg == "--parallel-cells") cfg.parallel_cells = true;
      else if (arg == "--print-summary") print_summary = true;
      else if (arg == "--print-cells") print_cells = true;
      else {
        usage(argv[0]);
        return 2;
      }
    }

    // run_campaign writes per-cell artifacts (atomically, as cells finish)
    // and the summary itself when cfg.output_dir is set.
    const core::CampaignResult result = core::run_campaign(cfg);

    if (print_cells) {
      for (const core::CampaignCell& c : result.cells) {
        std::printf("cell %d n=%d t=%d proto=%s th=%s k=%d adv=%s plan=%s "
                    "seed0=%" PRIu64 " trials=%d viol=%d decided=%d "
                    "all=%d mean=%.17g%s%s\n",
                    c.index, c.n, c.t, c.protocol.c_str(),
                    c.thresholds.c_str(), c.memory_k, c.adversary.c_str(),
                    c.chaos_plan.c_str(), c.seed0, c.report.trials,
                    c.report.agreement_violations +
                        c.report.validity_violations,
                    c.report.decided_runs, c.report.all_decided_runs,
                    c.report.mean_windows_to_first,
                    c.resumed ? " [resumed]" : "",
                    c.failed ? " [FAILED: timeout]" : "");
      }
    }

    std::size_t resumed = 0;
    std::size_t failed = 0;
    for (const core::CampaignCell& c : result.cells) {
      if (c.resumed) ++resumed;
      if (c.failed) ++failed;
    }
    if (!cfg.output_dir.empty()) {
      std::fprintf(stderr,
                   "campaign '%s': wrote %zu cell files + summary to %s"
                   " (%zu resumed, %zu failed)\n",
                   cfg.name.c_str(), result.cells.size() - failed,
                   cfg.output_dir.c_str(), resumed, failed);
    }

    if (print_summary) {
      std::fputs(core::campaign_summary_json(result).c_str(), stdout);
    } else {
      const core::MeasureOneReport& s = result.summary;
      std::fprintf(stderr,
                   "campaign '%s': %zu cells, %d trials, %d violations "
                   "(%d agreement, %d validity), %d decided, mean metric "
                   "%.6g\n",
                   cfg.name.c_str(), result.cells.size(), s.trials,
                   s.agreement_violations + s.validity_violations,
                   s.agreement_violations, s.validity_violations,
                   s.decided_runs, s.mean_windows_to_first);
    }
    return (result.summary.clean() && failed == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign: %s\n", e.what());
    return 2;
  }
}
